package storage

// Multiversion storage tests: deterministic visibility of the version
// chains (snapshots read history, uncommitted versions stay invisible,
// the GC horizon respects pins) and the satellite race stress — readers
// pinning old snapshots while writers supersede versions and the GC
// recycles payloads underneath them. Any use-after-free of a recycled
// payload surfaces as a checksum panic, a race report, or a wrong value.

import (
	"fmt"
	"sync"
	"testing"

	"optcc/internal/core"
)

// commitInc runs one committed increment of v by tx.
func commitInc(t *testing.T, kv *KV, tx int, v core.Var) {
	t.Helper()
	if err := kv.ApplyStep(tx, incStep(v)); err != nil {
		t.Fatal(err)
	}
	kv.Commit(tx)
}

// TestVersionChainVisibility pins snapshots between commits and checks
// each one keeps reading its own cut of history: version begin/end
// stamps, the uncommitted mark, the pin-aware GC horizon and the
// version-collection counter, all through the public SnapshotBackend
// surface.
func TestVersionChainVisibility(t *testing.T) {
	kv := NewKV(Config{Shards: 2, ValueSize: 64, Recycle: true, SnapshotSlots: 8})
	kv.Reset(core.DB{"x": 0, "y": 10})

	if got := kv.SnapshotSlots(); got != 8 {
		t.Fatalf("SnapshotSlots = %d", got)
	}
	// The initial load is visible at snapshot 0.
	s0 := kv.SnapshotAcquire(0)
	if s0 != 0 {
		t.Fatalf("initial snapshot = %d", s0)
	}
	if got := kv.SnapshotRead(0, "x", s0); got != 0 {
		t.Fatalf("snap0 x = %d", got)
	}

	commitInc(t, kv, 1, "x") // commit ts 1: x=1
	// The old pin still reads x=0; a fresh pin reads x=1.
	if got := kv.SnapshotRead(0, "x", s0); got != 0 {
		t.Fatalf("snap0 x after commit = %d", got)
	}
	s1 := kv.SnapshotAcquire(1)
	if s1 != 1 {
		t.Fatalf("snapshot after first commit = %d", s1)
	}
	if got := kv.SnapshotRead(1, "x", s1); got != 1 {
		t.Fatalf("snap1 x = %d", got)
	}

	// An uncommitted write is invisible to snapshots and to other
	// transactions' Gets, but visible to its own writer.
	if err := kv.ApplyStep(2, incStep("x")); err != nil {
		t.Fatal(err)
	}
	if got := kv.SnapshotRead(1, "x", s1); got != 1 {
		t.Fatalf("snap1 x under uncommitted write = %d", got)
	}
	if got := kv.Get(3, "x"); got != 1 {
		t.Fatalf("other tx read under uncommitted write = %d", got)
	}
	if got := kv.Get(2, "x"); got != 2 {
		t.Fatalf("read-your-writes = %d", got)
	}
	kv.Rollback(2)
	if got := kv.Get(3, "x"); got != 1 {
		t.Fatalf("x after rollback = %d", got)
	}

	// Commit ts 2 retires the x=1 version; the pin at snapshot 1 keeps it
	// alive, so nothing is collected yet.
	commitInc(t, kv, 2, "x") // x=2
	if got := kv.SnapshotRead(1, "x", s1); got != 1 {
		t.Fatalf("snap1 x after supersede = %d", got)
	}
	if got := kv.VersionsGCed(); got != 0 {
		t.Fatalf("collected %d versions under a pin", got)
	}

	// Releasing the old pins lets the next commit's GC pass collect every
	// version superseded at or below the new horizon — including the one
	// this very commit displaced, since no pin holds it.
	kv.SnapshotRelease(0)
	kv.SnapshotRelease(1)
	commitInc(t, kv, 1, "x") // commit ts 3: x=3, horizon now 3
	if got := kv.VersionsGCed(); got != 3 {
		t.Fatalf("collected %d versions after release, want 3", got)
	}
	s3 := kv.SnapshotAcquire(2)
	if got := kv.SnapshotRead(2, "x", s3); got != 3 {
		t.Fatalf("snap3 x = %d", got)
	}
	// y was never written: every snapshot reads the initial load.
	if got := kv.SnapshotRead(2, "y", s3); got != 10 {
		t.Fatalf("snap3 y = %d", got)
	}
	kv.SnapshotRelease(2)

	st := kv.Stats()
	if st.SnapshotReads != kv.SnapshotReads() || st.SnapshotReads == 0 {
		t.Fatalf("snapshot read accounting: %d vs %d", st.SnapshotReads, kv.SnapshotReads())
	}
	if st.VersionsGCed != 3 {
		t.Fatalf("stats VersionsGCed = %d", st.VersionsGCed)
	}
}

// TestSnapshotGCRace is the satellite -race stress: readers continuously
// pin snapshots and re-read every variable while per-variable writers
// commit supersessions that retire, collect and — with Recycle on —
// recycle the payloads of versions the readers may still be walking. The
// pin horizon must keep every visible version alive: a recycled payload
// reached through a pinned snapshot would fail its checksum (panic),
// trip the race detector, or return a torn value; and within one pinned
// snapshot two reads of the same variable must agree (repeatable read).
func TestSnapshotGCRace(t *testing.T) {
	const (
		writers = 6
		readers = 4
		rounds  = 300
	)
	kv := NewKV(Config{Shards: 2, ValueSize: 256, Recycle: true, SnapshotSlots: readers})
	init := core.DB{}
	vars := make([]core.Var, writers)
	for i := range vars {
		vars[i] = core.Var(fmt.Sprintf("w%d", i))
		init[vars[i]] = 0
	}
	kv.Reset(init)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := kv.ApplyStep(w, incStep(vars[w])); err != nil {
					panic(err)
				}
				kv.Commit(w)
			}
		}(w)
	}
	stop := make(chan struct{})
	var rdWg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rdWg.Add(1)
		go func(slot int) {
			defer rdWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := kv.SnapshotAcquire(slot)
				for _, v := range vars {
					a := kv.SnapshotRead(slot, v, snap)
					b := kv.SnapshotRead(slot, v, snap)
					if a != b {
						panic(fmt.Sprintf("snapshot %d: %s read %d then %d", snap, v, a, b))
					}
					if a < 0 || a > rounds {
						panic(fmt.Sprintf("snapshot %d: %s = %d out of range", snap, v, a))
					}
				}
				kv.SnapshotRelease(slot)
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	rdWg.Wait()

	// Collection only runs on commits, so a reader that held an early pin
	// through the whole write burst can legitimately leave everything
	// retired-but-uncollected. With every pin released, one more committed
	// round per variable must drain the backlog.
	for w, v := range vars {
		commitInc(t, kv, w, v)
	}
	for _, v := range vars {
		if got := kv.Get(0, v); got != rounds+1 {
			t.Fatalf("%s = %d, want %d", v, got, rounds+1)
		}
	}
	if gced := kv.VersionsGCed(); gced < writers*rounds {
		t.Fatalf("GC collected %d versions, want at least %d", gced, writers*rounds)
	}
}
