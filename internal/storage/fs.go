package storage

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the filesystem surface the disk backend writes through. It is
// deliberately tiny — append-only files, whole-file reads, directory
// listing, atomic rename — because everything the log-structured store does
// reduces to these operations, and a small surface is what makes the fault
// injector (ErrFS) able to enumerate every injection point. OSFS is the
// real implementation; tests wrap it in ErrFS to fail, torn-write, or
// crash the store at any chosen operation.
type FS interface {
	// Create opens name for appending, truncating any existing content.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if absent and keeping
	// existing content.
	Append(name string) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname (POSIX rename).
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// List returns the file names (not paths) in dir, sorted.
	List(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
}

// File is an open append-only file: sequential writes, durability via Sync.
type File interface {
	Write(p []byte) (int, error)
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	Close() error
}

// OSFS implements FS on the real filesystem via package os.
type OSFS struct{}

var _ FS = OSFS{}

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_APPEND|os.O_WRONLY, 0o644)
}

func (OSFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Injection errors. ErrInjected is a one-shot transient failure (FailAt,
// ShortWriteAt); ErrCrashed is terminal — once a crash point is reached
// every subsequent operation on the ErrFS fails with it, modeling a
// process that has lost its storage and can only recover by reopening.
var (
	ErrInjected = errors.New("errfs: injected failure")
	ErrCrashed  = errors.New("errfs: crashed")
)

// ErrFS wraps an FS and injects faults at chosen operation indices. The
// operations it counts and can fail are the ones the durability protocols
// depend on — Write, Sync, Rename and Remove — numbered from 1 in call
// order across all files. (Rename and Remove joined the catalogue with the
// checkpointer: its tmp→rename publish and its segment unlinks are
// protocol steps a crash must be able to interrupt, exactly like a torn
// commit append.) The catalogue of injection points (DESIGN.md
// "Durability"):
//
//   - FailAt(n): operation n returns ErrInjected once; later operations
//     succeed. Models a transient I/O error.
//   - ShortWriteAt(n): write n persists only the first half of its buffer,
//     then returns ErrInjected (a torn write); a Sync, Rename or Remove at
//     n just fails.
//   - CrashAt(n): operation n writes a partial prefix (if a write) and
//     fails with ErrCrashed, as does everything after it. Models power
//     loss mid-operation: the prefix may be on disk, the tail is not.
//
// Ops() reports the operations performed so far, which is how the torture
// harness discovers the total number of injection points for a workload
// (run once fault-free, then crash at every index in turn).
type ErrFS struct {
	inner FS

	mu      sync.Mutex
	ops     int64
	failAt  int64
	shortAt int64
	crashAt int64
	crashed bool
}

var _ FS = (*ErrFS)(nil)

// NewErrFS wraps inner with no faults armed.
func NewErrFS(inner FS) *ErrFS { return &ErrFS{inner: inner} }

// FailAt arms a one-shot failure of operation n (1-based; 0 disarms).
func (e *ErrFS) FailAt(n int64) { e.mu.Lock(); e.failAt = n; e.mu.Unlock() }

// ShortWriteAt arms a torn write at operation n (1-based; 0 disarms).
func (e *ErrFS) ShortWriteAt(n int64) { e.mu.Lock(); e.shortAt = n; e.mu.Unlock() }

// CrashAt arms a crash at operation n (1-based; 0 disarms): that operation
// and every later one fail with ErrCrashed.
func (e *ErrFS) CrashAt(n int64) { e.mu.Lock(); e.crashAt = n; e.mu.Unlock() }

// Ops returns the number of countable operations (writes, syncs, renames
// and removes) performed so far.
func (e *ErrFS) Ops() int64 { e.mu.Lock(); defer e.mu.Unlock(); return e.ops }

// Crashed reports whether a crash point has been reached.
func (e *ErrFS) Crashed() bool { e.mu.Lock(); defer e.mu.Unlock(); return e.crashed }

// op accounts one data operation and returns the fault to apply:
// errCrash, errFail, errShort (torn write) or nil.
type faultKind int

const (
	faultNone faultKind = iota
	faultFail
	faultShort
	faultCrash
)

func (e *ErrFS) op() faultKind {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return faultCrash
	}
	e.ops++
	switch {
	case e.crashAt > 0 && e.ops >= e.crashAt:
		e.crashed = true
		return faultCrash
	case e.failAt > 0 && e.ops == e.failAt:
		return faultFail
	case e.shortAt > 0 && e.ops == e.shortAt:
		return faultShort
	}
	return faultNone
}

// metaOK gates the control-plane operations (create/list/read): they are
// not counted as injection points, but once crashed they fail too.
func (e *ErrFS) metaOK() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	return nil
}

func (e *ErrFS) Create(name string) (File, error) {
	if err := e.metaOK(); err != nil {
		return nil, err
	}
	f, err := e.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, f: f}, nil
}

func (e *ErrFS) Append(name string) (File, error) {
	if err := e.metaOK(); err != nil {
		return nil, err
	}
	f, err := e.inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, f: f}, nil
}

func (e *ErrFS) ReadFile(name string) ([]byte, error) {
	if err := e.metaOK(); err != nil {
		return nil, err
	}
	return e.inner.ReadFile(name)
}

func (e *ErrFS) Rename(oldname, newname string) error {
	switch e.op() {
	case faultCrash:
		return ErrCrashed
	case faultFail, faultShort:
		return ErrInjected
	}
	return e.inner.Rename(oldname, newname)
}

func (e *ErrFS) Remove(name string) error {
	switch e.op() {
	case faultCrash:
		return ErrCrashed
	case faultFail, faultShort:
		return ErrInjected
	}
	return e.inner.Remove(name)
}

func (e *ErrFS) List(dir string) ([]string, error) {
	if err := e.metaOK(); err != nil {
		return nil, err
	}
	return e.inner.List(dir)
}

func (e *ErrFS) MkdirAll(dir string) error {
	if err := e.metaOK(); err != nil {
		return err
	}
	return e.inner.MkdirAll(dir)
}

// errFile routes Write and Sync through the injector.
type errFile struct {
	fs *ErrFS
	f  File
}

func (ef *errFile) Write(p []byte) (int, error) {
	switch ef.fs.op() {
	case faultCrash:
		// Power loss mid-write: a prefix of the buffer may reach the disk.
		n := len(p) / 2
		if n > 0 {
			ef.f.Write(p[:n])
		}
		return n, ErrCrashed
	case faultFail:
		return 0, ErrInjected
	case faultShort:
		n := len(p) / 2
		if n > 0 {
			if _, err := ef.f.Write(p[:n]); err != nil {
				return 0, err
			}
		}
		return n, ErrInjected
	}
	return ef.f.Write(p)
}

func (ef *errFile) Sync() error {
	switch ef.fs.op() {
	case faultCrash:
		return ErrCrashed
	case faultFail, faultShort:
		return ErrInjected
	}
	return ef.f.Sync()
}

func (ef *errFile) Close() error { return ef.f.Close() }

// segPath joins dir and a segment file name through the real separator —
// shared by disk.go and recovery.go.
func segPath(dir, name string) string { return filepath.Join(dir, name) }
