package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"optcc/internal/core"
)

// WAL record framing: every record on disk is
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// with the payload starting in a one-byte kind tag. The checksum is what
// makes torn tails detectable: a record is admitted by recovery only if the
// full frame is present and the CRC matches; the first violation ends the
// valid prefix of the segment, and everything after it is discarded. Record
// contents use varints, so the log stays compact for small transactions.
//
// Record kinds (DESIGN.md "Durability"):
//
//	walUpdate   tx, var, old, new       eager write: redo (new) + undo (old)
//	walCommit   tx, n, (var, new)×n     commit point; n>0 carries a buffered
//	                                    transaction's write set (redo-only)
//	walAbort    tx                      abort point: undo tx's walUpdates
//	walSnapshot n, (var, val)×n         full-state checkpoint; resets the
//	                                    recovered state and clears live txs
//	walCkpt     ckpt, aseq, aoff        fuzzy-checkpoint marker: checkpoint
//	                                    file ckpt is complete and anchored at
//	                                    byte aoff of segment aseq; every
//	                                    segment < aseq is retirement-eligible.
//	                                    Doubles as the header record inside
//	                                    the checkpoint file itself.
const (
	walUpdate byte = iota + 1
	walCommit
	walAbort
	walSnapshot
	walCkpt
)

// walHeaderSize is the fixed frame prefix: length + checksum.
const walHeaderSize = 8

// castagnoli is the CRC-32C table (the polynomial used by iSCSI and most
// storage engines; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walWrite is one (variable, value) pair inside a commit or snapshot
// record, or the redo half of an update record.
type walWrite struct {
	v   core.Var
	val core.Value
}

// walRec is a decoded record.
type walRec struct {
	kind    byte
	tx      int
	v       core.Var   // walUpdate
	old     core.Value // walUpdate: undo value
	new     core.Value // walUpdate: redo value
	existed bool       // walUpdate: v existed before (undo restores vs deletes)
	writes  []walWrite // walCommit (buffered), walSnapshot
	ckpt    int        // walCkpt: checkpoint file sequence number
	aseq    int        // walCkpt: anchor segment
	aoff    int64      // walCkpt: anchor byte offset within aseq
}

// walEncoder frames records into a reusable buffer. Not safe for
// concurrent use; the disk backend serializes appends under its mutex.
type walEncoder struct {
	buf []byte // scratch: payload is built at buf[walHeaderSize:]
}

// seal stamps the frame header over the payload built in e.buf and returns
// the complete frame, valid until the next encode call.
func (e *walEncoder) seal() []byte {
	payload := e.buf[walHeaderSize:]
	binary.LittleEndian.PutUint32(e.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e.buf[4:8], crc32.Checksum(payload, castagnoli))
	return e.buf
}

func (e *walEncoder) reset() {
	e.buf = e.buf[:0]
	e.buf = append(e.buf, 0, 0, 0, 0, 0, 0, 0, 0)
}

func (e *walEncoder) putUvarint(x uint64) {
	e.buf = binary.AppendUvarint(e.buf, x)
}

func (e *walEncoder) putVarint(x int64) {
	e.buf = binary.AppendVarint(e.buf, x)
}

func (e *walEncoder) putVar(v core.Var) {
	e.putUvarint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// encodeUpdate frames an eager-write record: redo value plus the
// overwritten value (and whether the variable existed) for undo.
func (e *walEncoder) encodeUpdate(tx int, v core.Var, old, new core.Value, existed bool) []byte {
	e.reset()
	e.buf = append(e.buf, walUpdate)
	e.putUvarint(uint64(tx))
	e.putVar(v)
	e.putVarint(int64(old))
	e.putVarint(int64(new))
	if existed {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
	return e.seal()
}

// encodeCommit frames a commit record; writes carries a buffered
// transaction's write set (nil/empty for eagerly-applied transactions).
func (e *walEncoder) encodeCommit(tx int, writes []walWrite) []byte {
	e.reset()
	e.buf = append(e.buf, walCommit)
	e.putUvarint(uint64(tx))
	e.putUvarint(uint64(len(writes)))
	for _, w := range writes {
		e.putVar(w.v)
		e.putVarint(int64(w.val))
	}
	return e.seal()
}

// encodeAbort frames an abort record.
func (e *walEncoder) encodeAbort(tx int) []byte {
	e.reset()
	e.buf = append(e.buf, walAbort)
	e.putUvarint(uint64(tx))
	return e.seal()
}

// encodeCkpt frames a checkpoint marker: checkpoint file ckpt captures the
// store as of byte aoff of segment aseq. Written to the WAL after the
// checkpoint file is durably renamed, and as the header record of the
// checkpoint file itself.
func (e *walEncoder) encodeCkpt(ckpt, aseq int, aoff int64) []byte {
	e.reset()
	e.buf = append(e.buf, walCkpt)
	e.putUvarint(uint64(ckpt))
	e.putUvarint(uint64(aseq))
	e.putUvarint(uint64(aoff))
	return e.seal()
}

// encodeSnapshot frames a full-state checkpoint.
func (e *walEncoder) encodeSnapshot(state core.DB) []byte {
	e.reset()
	e.buf = append(e.buf, walSnapshot)
	e.putUvarint(uint64(len(state)))
	for v, val := range state {
		e.putVar(v)
		e.putVarint(int64(val))
	}
	return e.seal()
}

// walDecode parses one record payload (the bytes after the frame header).
func walDecode(payload []byte) (walRec, error) {
	var r walRec
	if len(payload) == 0 {
		return r, fmt.Errorf("wal: empty record")
	}
	r.kind = payload[0]
	d := walDecoder{b: payload[1:]}
	switch r.kind {
	case walUpdate:
		r.tx = int(d.uvarint())
		r.v = d.variable()
		r.old = core.Value(d.varint())
		r.new = core.Value(d.varint())
		r.existed = d.byte() != 0
	case walCommit:
		r.tx = int(d.uvarint())
		n := d.uvarint()
		if n > uint64(len(d.b)) { // each write needs ≥2 bytes; cheap bound
			return r, fmt.Errorf("wal: commit write count %d exceeds payload", n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			w := walWrite{v: d.variable()}
			w.val = core.Value(d.varint())
			r.writes = append(r.writes, w)
		}
	case walAbort:
		r.tx = int(d.uvarint())
	case walCkpt:
		r.ckpt = int(d.uvarint())
		r.aseq = int(d.uvarint())
		r.aoff = int64(d.uvarint())
	case walSnapshot:
		n := d.uvarint()
		if n > uint64(len(d.b)) {
			return r, fmt.Errorf("wal: snapshot entry count %d exceeds payload", n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			w := walWrite{v: d.variable()}
			w.val = core.Value(d.varint())
			r.writes = append(r.writes, w)
		}
	default:
		return r, fmt.Errorf("wal: unknown record kind %d", r.kind)
	}
	if d.err != nil {
		return r, d.err
	}
	return r, nil
}

// walDecoder cursors over a record payload.
type walDecoder struct {
	b   []byte
	err error
}

func (d *walDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("wal: truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return x
}

func (d *walDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("wal: truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return x
}

func (d *walDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.err = fmt.Errorf("wal: truncated flag byte")
		return 0
	}
	c := d.b[0]
	d.b = d.b[1:]
	return c
}

func (d *walDecoder) variable() core.Var {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.err = fmt.Errorf("wal: truncated variable name")
		return ""
	}
	v := core.Var(d.b[:n])
	d.b = d.b[n:]
	return v
}

// walScan walks the framed records in data, calling fn for each valid one
// in order. It returns the length of the valid prefix and whether the
// segment ended cleanly: valid < len(data) means a torn or corrupt tail —
// an incomplete frame, a checksum mismatch, or an undecodable payload —
// and scanning stops at the last record that checked out, which is exactly
// the prefix recovery may trust.
func walScan(data []byte, fn func(walRec)) (valid int, clean bool) {
	off := 0
	for off < len(data) {
		if len(data)-off < walHeaderSize {
			return off, false
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n <= 0 || len(data)-off-walHeaderSize < n {
			return off, false
		}
		payload := data[off+walHeaderSize : off+walHeaderSize+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, false
		}
		rec, err := walDecode(payload)
		if err != nil {
			return off, false
		}
		fn(rec)
		off += walHeaderSize + n
	}
	return off, true
}
