package storage

import (
	"sync"
	"sync/atomic"
)

// GroupCommitter is the storage layer's group-commit pipeline: it coalesces
// concurrent Commit calls into groups in the classic leader/follower style.
// A finishing transaction enqueues into its lane and the first enqueuer to
// find the lane idle becomes the lane's driver: it swaps out the whole
// accumulated queue and processes it as one group — (1) committing each
// member on the backend, discarding undo logs while the scheduler's locks
// are still held, preserving strictness, then (2) invoking the release
// callback once with the whole group, which is where the runtime releases
// scheduler locks and kicks its dispatch loops in a single sweep.
// Followers that enqueue while a driver is active return immediately: their
// commit and lock release happen on the driver (the ROADMAP's async lock
// release), and the driver keeps draining until its lane is empty, so every
// follower is picked up. No background goroutine and no wakeup handoff is
// involved — on a loaded machine the driver is already running, which is
// exactly what makes the pattern cheap where a dedicated commit thread
// would add a scheduling hop per group.
//
// Transactions are partitioned across lanes by id; a transaction's Enqueue
// must follow its last granted step (the usual per-transaction discipline —
// nothing else may act for it concurrently).
type GroupCommitter struct {
	be      Backend
	release func(txs []int)
	lanes   []*commitLane

	groups atomic.Int64 // groups processed
	txs    atomic.Int64 // transactions committed through the pipeline
}

// commitLane is one pipeline partition: a queue plus the driver flag of the
// leader/follower protocol. queue and free are a double buffer — the driver
// swaps them on every group so enqueues append into retained capacity and
// the steady-state pipeline allocates nothing per group.
type commitLane struct {
	mu      sync.Mutex
	queue   []int
	free    []int
	driving atomic.Bool
}

// NewGroupCommitter returns a pipeline with the given lane count (minimum
// 1) over be. A nil backend is allowed: the pipeline then only batches the
// release callback (group lock release without storage). The release
// callback receives every enqueued transaction exactly once, in per-lane
// groups; a nil release is a no-op.
func NewGroupCommitter(be Backend, lanes int, release func(txs []int)) *GroupCommitter {
	if lanes < 1 {
		lanes = 1
	}
	g := &GroupCommitter{be: be, release: release}
	for i := 0; i < lanes; i++ {
		g.lanes = append(g.lanes, &commitLane{})
	}
	return g
}

// Lanes returns the pipeline's lane count.
func (g *GroupCommitter) Lanes() int { return len(g.lanes) }

// Enqueue submits tx for commit. If tx's lane has no driver, the caller
// becomes it and processes the accumulated group (possibly including other
// transactions) before returning; otherwise the call returns immediately
// and the active driver commits tx. Either way, every enqueued transaction
// is fully processed by the time all Enqueue calls have returned.
func (g *GroupCommitter) Enqueue(tx int) {
	l := g.lanes[tx%len(g.lanes)]
	l.mu.Lock()
	l.queue = append(l.queue, tx)
	l.mu.Unlock()
	g.drive(l)
}

// drive elects the caller lane driver if the lane is idle and drains it.
// After standing down it re-checks the queue: a follower may have enqueued
// between the driver's last empty swap and the flag clearing, and that
// follower's own drive call may have already returned — someone must pick
// the orphan up, and the re-check loop is that someone.
func (g *GroupCommitter) drive(l *commitLane) {
	for {
		if !l.driving.CompareAndSwap(false, true) {
			return // an active driver will drain the queue, our tx included
		}
		g.drain(l)
		l.driving.Store(false)
		l.mu.Lock()
		more := len(l.queue) > 0
		l.mu.Unlock()
		if !more {
			return
		}
	}
}

// drain processes the lane queue group by group until it is empty. Each
// swap of the queue under the lane mutex is one group: everything that
// accumulated while the previous group was committing. The swap trades the
// queue for the lane's spare buffer (and hands the drained group back as
// the next spare), so a warm lane commits whole groups without allocating.
func (g *GroupCommitter) drain(l *commitLane) {
	for {
		l.mu.Lock()
		group := l.queue
		l.queue = l.free[:0]
		l.free = nil
		l.mu.Unlock()
		if len(group) == 0 {
			l.mu.Lock()
			l.free = group
			l.mu.Unlock()
			return
		}
		for _, tx := range group {
			if g.be != nil {
				g.be.Commit(tx)
			}
		}
		if g.release != nil {
			g.release(group)
		}
		g.groups.Add(1)
		g.txs.Add(int64(len(group)))
		l.mu.Lock()
		l.free = group[:0]
		l.mu.Unlock()
	}
}

// Close flushes the pipeline. With the leader/follower protocol every
// enqueued transaction is already processed once all Enqueue calls have
// returned, so this is a defensive sweep; it must not run concurrently
// with Enqueue.
func (g *GroupCommitter) Close() {
	for _, l := range g.lanes {
		g.drive(l)
	}
}

// Stats reports the pipeline's work so far: groups processed and
// transactions committed. txs/groups is the mean group size — the
// coalescing factor group commit achieved.
func (g *GroupCommitter) Stats() (groups, txs int64) {
	return g.groups.Load(), g.txs.Load()
}
