package storage

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// GroupCommitter is the storage layer's group-commit pipeline: it coalesces
// concurrent Commit calls into groups in the classic leader/follower style.
// A finishing transaction enqueues into its lane and the first enqueuer to
// find the lane idle becomes the lane's driver: it swaps out the whole
// accumulated queue and processes it as one group — (1) committing each
// member on the backend, discarding undo logs while the scheduler's locks
// are still held, preserving strictness, then (2) invoking the release
// callback once with the whole group, which is where the runtime releases
// scheduler locks and kicks its dispatch loops in a single sweep.
// Followers that enqueue while a driver is active return immediately: their
// commit and lock release happen on the driver (the ROADMAP's async lock
// release), and the driver keeps draining until its lane is empty, so every
// follower is picked up. No background goroutine and no wakeup handoff is
// involved — on a loaded machine the driver is already running, which is
// exactly what makes the pattern cheap where a dedicated commit thread
// would add a scheduling hop per group.
//
// Transactions are partitioned across lanes by id; a transaction's Enqueue
// must follow its last granted step (the usual per-transaction discipline —
// nothing else may act for it concurrently).
type GroupCommitter struct {
	be      Backend
	syncer  GroupSyncer // non-nil iff be implements GroupSyncer
	yield   bool        // yield before sealing a group (amortizable syncs)
	release func(txs []int)
	onFail  func(txs []int, err error)
	lanes   []*commitLane

	groups atomic.Int64 // groups processed
	txs    atomic.Int64 // transactions committed through the pipeline
	failed atomic.Int64 // transactions in groups whose GroupSync failed

	errMu sync.Mutex
	err   error // first GroupSync failure
}

// commitLane is one pipeline partition: a queue plus the driver flag of the
// leader/follower protocol. queue and free are a double buffer — the driver
// swaps them on every group so enqueues append into retained capacity and
// the steady-state pipeline allocates nothing per group.
type commitLane struct {
	mu      sync.Mutex
	queue   []int
	free    []int
	driving atomic.Bool
}

// NewGroupCommitter returns a pipeline with the given lane count (minimum
// 1) over be. A nil backend is allowed: the pipeline then only batches the
// release callback (group lock release without storage). The release
// callback receives every enqueued transaction exactly once, in per-lane
// groups; a nil release is a no-op.
func NewGroupCommitter(be Backend, lanes int, release func(txs []int)) *GroupCommitter {
	if lanes < 1 {
		lanes = 1
	}
	g := &GroupCommitter{be: be, release: release}
	if s, ok := be.(GroupSyncer); ok {
		g.syncer = s
		// Only yield for it when the backend says its syncs actually
		// amortize across a group (a backend without the hint is assumed
		// amortizable — that is what a GroupSyncer is for).
		if c, ok := be.(interface{ SyncCoalesces() bool }); !ok || c.SyncCoalesces() {
			g.yield = true
		}
	}
	for i := 0; i < lanes; i++ {
		g.lanes = append(g.lanes, &commitLane{})
	}
	return g
}

// Lanes returns the pipeline's lane count.
func (g *GroupCommitter) Lanes() int { return len(g.lanes) }

// OnFail registers the durability-failure callback: when the backend's
// GroupSync errors after a group was committed, fn receives every
// transaction of that group together with the error, before the release
// callback runs. Durability loss is all-or-nothing per group — the fsync
// that failed covered the leader and every follower alike, so no member
// may be reported durable (this replaces drain's former silent-success
// assumption). Must be set before the first Enqueue.
func (g *GroupCommitter) OnFail(fn func(txs []int, err error)) { g.onFail = fn }

// Err returns the first GroupSync failure, if any — the no-callback way
// to check a drained pipeline for silent durability loss.
func (g *GroupCommitter) Err() error {
	g.errMu.Lock()
	defer g.errMu.Unlock()
	return g.err
}

// Failed returns the number of transactions in groups whose GroupSync
// failed.
func (g *GroupCommitter) Failed() int64 { return g.failed.Load() }

// Enqueue submits tx for commit. If tx's lane has no driver, the caller
// becomes it and processes the accumulated group (possibly including other
// transactions) before returning; otherwise the call returns immediately
// and the active driver commits tx. Either way, every enqueued transaction
// is fully processed by the time all Enqueue calls have returned.
func (g *GroupCommitter) Enqueue(tx int) {
	l := g.lanes[tx%len(g.lanes)]
	l.mu.Lock()
	l.queue = append(l.queue, tx)
	l.mu.Unlock()
	g.drive(l)
}

// drive elects the caller lane driver if the lane is idle and drains it.
// After standing down it re-checks the queue: a follower may have enqueued
// between the driver's last empty swap and the flag clearing, and that
// follower's own drive call may have already returned — someone must pick
// the orphan up, and the re-check loop is that someone.
func (g *GroupCommitter) drive(l *commitLane) {
	for {
		if !l.driving.CompareAndSwap(false, true) {
			return // an active driver will drain the queue, our tx included
		}
		g.drain(l)
		l.driving.Store(false)
		l.mu.Lock()
		more := len(l.queue) > 0
		l.mu.Unlock()
		if !more {
			return
		}
	}
}

// drain processes the lane queue group by group until it is empty. Each
// swap of the queue under the lane mutex is one group: everything that
// accumulated while the previous group was committing. The swap trades the
// queue for the lane's spare buffer (and hands the drained group back as
// the next spare), so a warm lane commits whole groups without allocating.
func (g *GroupCommitter) drain(l *commitLane) {
	for {
		// When the group sync is the cost being amortized, give runnable
		// peers one scheduling turn to reach Enqueue before the group is
		// sealed. Without this the grouping depends on the Go runtime
		// handing the P to other goroutines *during* the driver's fsync
		// syscall — which it does promptly on a busy multicore box but may
		// not do at all on a single-CPU one (sysmon's retake interval can
		// exceed the whole fsync), collapsing every group to size 1.
		if g.yield {
			runtime.Gosched()
		}
		l.mu.Lock()
		group := l.queue
		l.queue = l.free[:0]
		l.free = nil
		l.mu.Unlock()
		if len(group) == 0 {
			l.mu.Lock()
			l.free = group
			l.mu.Unlock()
			return
		}
		for _, tx := range group {
			if g.be != nil {
				g.be.Commit(tx)
			}
		}
		// Durable backends get exactly one fsync per group, here — the
		// whole point of coalescing commits into lanes. A failure is a
		// failure of every member: the group's commit records share the
		// sync, so none of them is durable, and OnFail reports them all.
		if g.syncer != nil {
			if err := g.syncer.GroupSync(); err != nil {
				g.errMu.Lock()
				if g.err == nil {
					g.err = err
				}
				g.errMu.Unlock()
				g.failed.Add(int64(len(group)))
				if g.onFail != nil {
					g.onFail(group, err)
				}
			}
		}
		// Release always runs, even for a failed group: the runtime must
		// still free scheduler locks and unpark users — the failure is
		// surfaced through OnFail/Err, not by wedging the pipeline.
		if g.release != nil {
			g.release(group)
		}
		g.groups.Add(1)
		g.txs.Add(int64(len(group)))
		l.mu.Lock()
		l.free = group[:0]
		l.mu.Unlock()
	}
}

// Close flushes the pipeline. With the leader/follower protocol every
// enqueued transaction is already processed once all Enqueue calls have
// returned, so this is a defensive sweep; it must not run concurrently
// with Enqueue.
func (g *GroupCommitter) Close() {
	for _, l := range g.lanes {
		g.drive(l)
	}
}

// Stats reports the pipeline's work so far: groups processed and
// transactions committed. txs/groups is the mean group size — the
// coalescing factor group commit achieved.
func (g *GroupCommitter) Stats() (groups, txs int64) {
	return g.groups.Load(), g.txs.Load()
}
