// Package storage is the storage layer of the engine: the pluggable
// Backend interface the runtime executes granted steps against, and its
// first implementation, the sharded in-memory KV store (kv.go).
//
// The paper's Section 6 runtime originally *simulated* execution — a step's
// cost was a sleep — so latency and throughput measured scheduling overhead
// only. A Backend turns execution time into real work: a granted step reads
// its variable's record (verifying the payload checksum), computes the
// step's interpretation, and writes a fresh copy-on-write record, with an
// undo log per transaction so aborts roll the database back.
//
// # Transaction discipline
//
// A Backend is driven under the same per-transaction discipline as the
// schedulers and the sharded dispatch runtime: calls on behalf of one
// transaction never overlap with each other, while calls for different
// transactions may be fully concurrent. In the runtime this holds by
// construction — a transaction's steps execute sequentially on its user
// goroutine, and rollback is only invoked while the transaction is parked
// or between its requests.
//
// # The replay invariant
//
// The committed backend state equals core.Exec of the committed schedule
// (the granted-step log projected to final attempts) whenever the execution
// is strict: no transaction reads or overwrites a value written by a
// transaction that has not yet committed or rolled back. Serial and the
// strict 2PL family (central, Mutexed, Sharded, ConcurrentStrict2PL)
// guarantee strictness — locks are held to commit, and rollback runs before
// lock release — so for them the invariant holds on every run; the
// race-enabled tests in internal/sim prove it. Non-strict schedulers
// (SGT-style aborting, OCC, TO) may execute dirty reads whose transaction
// later rolls back; running them against a Backend is safe (no corruption,
// no races) but the final state may legitimately differ from the committed
// replay. The disk backend's write-buffered mode (Config.Buffered) is the
// deferred-write answer: uncommitted writes never leave the transaction's
// buffer, so non-strict schedulers become recoverable rather than
// best-effort.
//
// # Durability
//
// The durable disk backend (disk.go) is a log-structured store: append-only
// segment files of checksummed records (wal.go), recovered by redo/undo
// replay (recovery.go), with fsyncs coalesced through the GroupCommitter
// (GroupSync). The fault-injection surface lives in fs.go (ErrFS). See
// DESIGN.md "Durability".
package storage

import (
	"fmt"

	"optcc/internal/core"
)

// Backend is the storage engine the runtime executes granted steps against.
// See the package comment for the concurrency contract and the replay
// invariant. The tx argument is the transaction index of the system under
// execution; it keys the per-transaction undo log and local-variable
// context.
type Backend interface {
	// Name identifies the backend.
	Name() string
	// Reset discards all state and loads the initial database.
	Reset(init core.DB)
	// Get returns the scalar value of v, reading (and checksum-verifying)
	// the full payload. The tx argument is recorded for read-set extensions;
	// the in-memory KV does not use it.
	Get(tx int, v core.Var) core.Value
	// Put stores scalar as the new value of v under copy-on-write: a fresh
	// record is built (payload copied, scalar stamped, checksum recomputed)
	// and the previous record is appended to tx's undo log.
	Put(tx int, v core.Var, scalar core.Value)
	// Scan visits every variable with its scalar until fn returns false.
	// The iteration order is unspecified; the view is consistent per shard
	// but not across shards while writers are active.
	Scan(fn func(v core.Var, scalar core.Value) bool)
	// ApplyStep executes one granted step for tx with the paper's step
	// semantics (t_ij ← x_ij; x_ij ← f_ij(t_i1..t_ij)): Get the variable,
	// append it to tx's locals, and — unless the step is a Read — Put the
	// step interpretation of the locals. It errors if a non-Read step has
	// no interpretation.
	ApplyStep(tx int, step core.Step) error
	// Commit ends tx: its writes become permanent and its undo log and
	// locals are discarded.
	Commit(tx int)
	// Rollback aborts tx: its undo log is replayed in reverse, restoring
	// every overwritten record byte-identically, and its locals are
	// discarded so a restart begins fresh.
	Rollback(tx int)
	// State snapshots the scalar database state, the shape core.Exec
	// produces for the replay-invariant comparison.
	State() core.DB
}

// SnapshotBackend is the optional multiversion extension of Backend: a
// store keeping timestamp-stamped version chains can serve read-only
// transactions from a consistent snapshot without any lock or shard-mutex
// acquisition. A reader owns one pin slot (the runtime assigns slot = user
// index, gated on SnapshotSlots), acquires a snapshot timestamp, reads any
// number of variables as of that timestamp, and releases the pin; the
// store's garbage collector never recycles a version still visible to a
// pinned snapshot. Implemented by *KV; see DESIGN.md "Multiversion
// storage" for visibility rules and the GC safety argument.
type SnapshotBackend interface {
	Backend
	// SnapshotSlots is the number of concurrent pins supported; slots are
	// in [0, SnapshotSlots).
	SnapshotSlots() int
	// SnapshotAcquire pins slot to the newest fully published commit
	// timestamp and returns it.
	SnapshotAcquire(slot int) int64
	// SnapshotRelease unpins the slot.
	SnapshotRelease(slot int)
	// SnapshotRead returns v's value as of snapshot snap (which the caller
	// holds pinned via slot): the newest version committed at or before
	// snap, checksum-verified, with no lock taken.
	SnapshotRead(slot int, v core.Var, snap int64) core.Value
	// SnapshotReads reports reads served through the snapshot path.
	SnapshotReads() int64
	// VersionsGCed reports superseded versions the store unlinked (and,
	// with recycling on, returned to its freelists).
	VersionsGCed() int64
}

// New builds a backend by name with the given configuration. It is the one
// backend registry — cmd/ccsim and internal/experiments both resolve names
// through it, so a new backend registers here once. Known names: "kv" (the
// sharded in-memory store), "noop" (the do-nothing backend for measuring
// pure runtime overhead — see Noop) and "disk" (the durable log-structured
// store — see Disk; recovery of an existing directory goes through
// OpenDisk instead).
func New(name string, cfg Config) (Backend, error) {
	switch name {
	case "kv":
		return NewKV(cfg), nil
	case "noop":
		return NewNoop(), nil
	case "disk":
		return NewDisk(cfg)
	default:
		return nil, fmt.Errorf("storage: unknown backend %q (known: kv, noop, disk)", name)
	}
}
