package storage

// Coverage for the group-commit pipeline: every enqueued transaction is
// committed on the backend and released exactly once, Close flushes, the
// backend commit precedes the group's release, and concurrent enqueuers
// coalesce into fewer groups than transactions. CI runs this under -race.

import (
	"sync"
	"testing"

	"optcc/internal/core"
)

// TestGroupCommitterDeliversAll: N concurrent enqueuers; after Close, the
// release callback has seen every transaction exactly once and every undo
// log is discarded.
func TestGroupCommitterDeliversAll(t *testing.T) {
	const n = 64
	kv := NewKV(Config{Shards: 4, ValueSize: 16})
	init := core.DB{}
	for i := 0; i < n; i++ {
		init[core.Var(rune('a'+i%26))+core.Var(rune('0'+i/26))] = 0
	}
	kv.Reset(init)
	var mu sync.Mutex
	released := map[int]int{}
	groups := 0
	gc := NewGroupCommitter(kv, 4, func(txs []int) {
		mu.Lock()
		groups++
		for _, tx := range txs {
			released[tx]++
		}
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for tx := 0; tx < n; tx++ {
		wg.Add(1)
		go func(tx int) {
			defer wg.Done()
			kv.Put(tx, core.Var(rune('a'+tx%26))+core.Var(rune('0'+tx/26)), core.Value(tx))
			gc.Enqueue(tx)
		}(tx)
	}
	wg.Wait()
	gc.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(released) != n {
		t.Fatalf("released %d of %d transactions", len(released), n)
	}
	for tx, c := range released {
		if c != 1 {
			t.Errorf("tx %d released %d times", tx, c)
		}
	}
	gotGroups, gotTxs := gc.Stats()
	if gotTxs != n {
		t.Errorf("stats report %d committed txs, want %d", gotTxs, n)
	}
	if gotGroups != int64(groups) {
		t.Errorf("stats report %d groups, release saw %d", gotGroups, groups)
	}
	// A committed transaction's undo log is gone: rolling back now must not
	// change the database.
	before := kv.State()
	for tx := 0; tx < n; tx++ {
		kv.Rollback(tx)
	}
	if !kv.State().Equal(before) {
		t.Fatal("rollback after group commit changed state: undo logs survived the pipeline")
	}
}

// TestGroupCommitterBackendBeforeRelease: within a group, every backend
// commit happens before the release callback runs (locks must release only
// after undo logs are discarded).
func TestGroupCommitterBackendBeforeRelease(t *testing.T) {
	rec := &recordingBackend{}
	var mu sync.Mutex
	var order []string
	rec.onCommit = func(tx int) {
		mu.Lock()
		order = append(order, "commit")
		mu.Unlock()
	}
	gc := NewGroupCommitter(rec, 1, func(txs []int) {
		mu.Lock()
		order = append(order, "release")
		mu.Unlock()
	})
	for tx := 0; tx < 8; tx++ {
		gc.Enqueue(tx)
	}
	gc.Close()
	mu.Lock()
	defer mu.Unlock()
	commits := 0
	for _, ev := range order {
		switch ev {
		case "commit":
			commits++
		case "release":
			if commits == 0 {
				t.Fatal("release before any commit of its group")
			}
			commits = 0
		}
	}
}

// TestGroupCommitterNilBackend: with no backend the pipeline still batches
// the release callback.
func TestGroupCommitterNilBackend(t *testing.T) {
	var mu sync.Mutex
	seen := 0
	gc := NewGroupCommitter(nil, 2, func(txs []int) {
		mu.Lock()
		seen += len(txs)
		mu.Unlock()
	})
	for tx := 0; tx < 10; tx++ {
		gc.Enqueue(tx)
	}
	gc.Close()
	if seen != 10 {
		t.Fatalf("released %d of 10", seen)
	}
}

// recordingBackend is a minimal Backend stub for pipeline-order tests.
type recordingBackend struct {
	onCommit func(tx int)
}

func (r *recordingBackend) Name() string                             { return "recording" }
func (r *recordingBackend) Reset(core.DB)                            {}
func (r *recordingBackend) Get(int, core.Var) core.Value             { return 0 }
func (r *recordingBackend) Put(int, core.Var, core.Value)            {}
func (r *recordingBackend) Scan(func(v core.Var, s core.Value) bool) {}
func (r *recordingBackend) ApplyStep(int, core.Step) error           { return nil }
func (r *recordingBackend) Commit(tx int)                            { r.onCommit(tx) }
func (r *recordingBackend) Rollback(int)                             {}
func (r *recordingBackend) State() core.DB                           { return core.DB{} }
