package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"optcc/internal/core"
)

// FsyncPolicy is when the disk backend forces its log to stable storage.
type FsyncPolicy int

const (
	// FsyncGroup (the default) defers the fsync to GroupSync, which the
	// GroupCommitter invokes once per drained group — one fsync covers
	// every commit record appended since the last sync, the classic group
	// commit amortization. The centralized runtime calls GroupSync after
	// each commit (a group of one), which degenerates to FsyncAlways.
	FsyncGroup FsyncPolicy = iota
	// FsyncAlways syncs inside every Commit: each transaction is durable
	// before its commit returns, at one fsync per transaction.
	FsyncAlways
	// FsyncNever leaves flushing to the OS; a clean Close still syncs.
	// Commits can be lost on a crash, but never torn: recovery still
	// admits only whole checksummed records.
	FsyncNever
)

// ParseFsyncPolicy maps the CLI spelling of a policy to its value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "group":
		return FsyncGroup, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync policy %q (known: always, group, never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "group"
	}
}

// GroupSyncer is the durability hook the GroupCommitter drives: after
// committing a group on the backend, it calls GroupSync once, making the
// whole group durable with a single fsync. A backend without the method is
// memory-only and the call is skipped.
type GroupSyncer interface {
	// GroupSync forces everything appended so far to stable storage. An
	// error means the group's durability is unknown — the committer
	// reports it for every member via OnFail.
	GroupSync() error
}

// DurabilityStats are the durable backend's counters, surfaced into
// sim.Metrics (Fsyncs, WALBytes, RecoveryNs, checkpoint counters) and the
// E13/E14 tables.
type DurabilityStats struct {
	// Fsyncs counts successful syncs of the log.
	Fsyncs int64
	// WALBytes counts bytes appended to the log.
	WALBytes int64
	// WALTruncated counts torn or corrupt log tails recovery discarded
	// (at most one per OpenDisk, since scanning stops at the first).
	WALTruncated int64
	// SyncFailures counts fsyncs that returned an error.
	SyncFailures int64
	// RecoveryNs is the wall time of the last OpenDisk replay.
	RecoveryNs int64
	// RecoveryBytes counts the checkpoint + log bytes the last OpenDisk
	// actually replayed — with checkpointing this is log-since-checkpoint,
	// not log-since-birth.
	RecoveryBytes int64
	// Checkpoints counts completed fuzzy checkpoints (checkpoint.go).
	Checkpoints int64
	// CheckpointFailures counts failed checkpoint attempts (each retried
	// with backoff until CheckpointerOff).
	CheckpointFailures int64
	// CheckpointBytes counts bytes written to checkpoint files.
	CheckpointBytes int64
	// SegmentsRetired counts sealed segments unlinked behind a durable
	// checkpoint marker.
	SegmentsRetired int64
	// CheckpointerOff is the graceful-degradation health flag: true once
	// persistent checkpoint failures disabled the checkpointer. The commit
	// path is unaffected; the log simply stops being retired.
	CheckpointerOff bool
}

// DurableBackend is the optional durability extension of Backend: a store
// that persists committed transactions and can account for it. Implemented
// by *Disk.
type DurableBackend interface {
	Backend
	GroupSyncer
	// Err returns the sticky durability error, if any: once an append or
	// sync fails the store is poisoned — every subsequent ApplyStep and
	// GroupSync fails — because the log can no longer be trusted to match
	// memory. The runtime surfaces it as the run error.
	Err() error
	// DurabilityStats reports the durability counters.
	DurabilityStats() DurabilityStats
}

// diskUndo is one overwritten value in an eagerly-applied transaction,
// kept for Rollback (and mirrored into the WAL update record so recovery
// can undo losers the same way).
type diskUndo struct {
	v       core.Var
	old     core.Value
	existed bool
}

// diskCtx is a transaction's execution context on the disk backend.
type diskCtx struct {
	locals []core.Value
	undo   []diskUndo // eager mode: overwritten values, newest last
	writes []walWrite // buffered mode: the deferred write set, in order
}

// Disk is the durable backend: a log-structured store whose only on-disk
// structure is the log itself — numbered append-only segment files of
// checksummed records (wal.go) — plus an in-memory table rebuilt from the
// log on open (recovery.go). There is no separate data store to keep
// consistent with the WAL; the committed prefix of the log IS the
// database, which is what makes crash recovery a pure replay.
//
// Two execution modes, selected by Config.Buffered:
//
//   - Eager (Buffered=false): Put applies to the table immediately and
//     appends a redo+undo update record; Commit appends a commit record;
//     Rollback undoes memory and appends an abort record. Correct under
//     strict schedulers (the 2PL family, serial), where no two live
//     transactions ever write the same variable.
//
//   - Write-buffered (Buffered=true): Put only accumulates in the
//     transaction's write set; readers see their own writes, everyone else
//     sees committed state. Commit appends one commit record carrying the
//     write set and applies it atomically; Rollback discards the buffer
//     without touching the log. This is what makes non-strict schedulers
//     (TO/OCC/SGT/mv) recoverable: an uncommitted write can never reach
//     the log, so recovery never needs to undo one.
//
// Concurrency: in-memory operations and log appends serialize on one
// mutex; the fsync behind GroupSync runs OFF that mutex (serialized by its
// own syncMu), so execution — appends included — proceeds while a group's
// fsync is in flight. That is what lets commit groups form: commits that
// arrive during a lane's fsync pile up and are covered by one later sync.
// FsyncAlways deliberately keeps its per-commit sync under the mutex — the
// committing transaction must be durable before Commit returns, and paying
// that latency inline is exactly the cost the policy exists to measure.
type Disk struct {
	fs       FS
	dir      string
	policy   FsyncPolicy
	buffered bool
	segBytes int64

	// ckptMu serializes whole checkpoints: the background loop and explicit
	// Checkpoint calls never interleave their capture/write/retire phases.
	// Lock order: ckptMu before syncMu before mu.
	ckptMu sync.Mutex

	// syncMu serializes the off-mutex fsyncs of GroupSync and excludes them
	// from checkpoint retirement (which closes sealed handles under it).
	// Lock order: syncMu before mu, never the reverse (appendLocked runs
	// under mu and must not touch syncMu).
	syncMu sync.Mutex

	mu     sync.Mutex
	table  map[core.Var]core.Value
	ctx    map[int]*diskCtx
	enc    walEncoder
	seq    int         // active segment number
	active File        // active segment, nil before Reset/OpenDisk
	sealed []sealedSeg // rolled segments, kept open until Close or
	// retirement (a concurrent GroupSync may hold a captured handle
	// mid-fsync; closing it under the roll would race the sync — retirement
	// closes them under syncMu, which excludes any in-flight group fsync)
	activeBytes int64    // bytes appended to the active segment
	dirty       bool     // appended since the last successful sync
	err         error    // sticky durability error
	lock        *os.File // exclusive data-dir lock (flock), nil once released

	// Checkpointer state (checkpoint.go), all under mu.
	ckptThresh  int64 // WAL bytes between checkpoints (0 = no background loop)
	sinceCkpt   int64 // bytes appended since the last checkpoint capture
	ckptSeq     int   // last checkpoint file number written
	ckptGen     int64 // bumped by Reset; abandons in-flight checkpoints
	ckptOff     bool  // disabled after persistent failures (health flag)
	ckptRunning bool  // background loop alive; cleared by its every exit
	ckptStopped bool  // stopCheckpointer called; Reset must not respawn
	ckptStop    chan struct{}
	ckptKick    chan struct{}
	ckptWG      sync.WaitGroup
	ckptOnce    sync.Once // stops the background loop exactly once

	fsyncs        atomic.Int64
	walBytes      atomic.Int64
	walTruncated  atomic.Int64
	syncFailures  atomic.Int64
	recoveryNs    atomic.Int64
	recoveryBytes atomic.Int64
	checkpoints   atomic.Int64
	ckptFailures  atomic.Int64
	ckptBytes     atomic.Int64
	segsRetired   atomic.Int64
	reads         atomic.Int64
	writes        atomic.Int64
	rollbacks     atomic.Int64
}

// sealedSeg is a rolled segment kept open until Close or retirement.
type sealedSeg struct {
	seq int
	f   File
}

var _ DurableBackend = (*Disk)(nil)

// defaultSegmentBytes seals the active segment once it exceeds 1 MiB.
const defaultSegmentBytes = 1 << 20

// NewDisk builds a disk backend in cfg.Dir (a fresh temporary directory
// when empty). The store is unusable until Reset loads an initial database
// — use OpenDisk to recover existing state instead. cfg.FS defaults to the
// real filesystem; tests plug in an ErrFS.
func NewDisk(cfg Config) (*Disk, error) {
	fs := cfg.FS
	if fs == nil {
		fs = OSFS{}
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "optcc-disk-")
		if err != nil {
			return nil, fmt.Errorf("storage: disk temp dir: %w", err)
		}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("storage: disk dir %s: %w", dir, err)
	}
	// Double-open protection: two live writers on one WAL is silent
	// corruption, so the data dir is guarded by an exclusive flock taken
	// for the store's lifetime. Released by Close — and by the sticky
	// error that poisons a store (poisonLocked), since a poisoned store
	// never writes the log again, exactly like the dead process whose lock
	// the kernel would release.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	segBytes := int64(cfg.SegmentBytes)
	if segBytes <= 0 {
		segBytes = defaultSegmentBytes
	}
	d := &Disk{
		fs:         fs,
		dir:        dir,
		policy:     cfg.Fsync,
		buffered:   cfg.Buffered,
		segBytes:   segBytes,
		lock:       lock,
		ckptThresh: int64(cfg.CheckpointBytes),
		ckptStop:   make(chan struct{}),
		ckptKick:   make(chan struct{}, 1),
		table:      make(map[core.Var]core.Value),
		ctx:        make(map[int]*diskCtx),
	}
	if d.ckptThresh > 0 {
		d.ckptRunning = true
		d.ckptWG.Add(1)
		go d.checkpointLoop()
	}
	return d, nil
}

// Name implements Backend.
func (d *Disk) Name() string {
	if d.buffered {
		return "disk(buffered)"
	}
	return "disk"
}

// Dir returns the backing directory.
func (d *Disk) Dir() string { return d.dir }

// segName formats segment file names so lexicographic order is replay
// order.
func segName(seq int) string { return fmt.Sprintf("seg-%08d.wal", seq) }

// poisonLocked records the sticky durability error (first one wins) and
// releases the data-dir lock: a poisoned store never writes the log again
// — every subsequent append, sync, checkpoint and retirement refuses — so
// giving up the exclusive lock mirrors the dead process whose flock the
// kernel releases, and lets a fresh OpenDisk recover the directory.
func (d *Disk) poisonLocked(err error) {
	if d.err == nil {
		d.err = err
	}
	if d.lock != nil {
		d.lock.Close()
		d.lock = nil
	}
}

// Reset implements Backend: discard every segment, load init as the new
// database, and persist it as a snapshot record opening a fresh log. The
// snapshot is synced before Reset returns so the baseline itself is
// durable.
func (d *Disk) Reset(init core.DB) {
	d.mu.Lock()
	d.resetLocked(init)
	// A degraded run leaves the background loop dead (sticky store error or
	// persistent checkpoint failures, checkpoint.go) — and resetLocked just
	// cleared both the sticky error and the CheckpointerOff flag, so the
	// healthy report must come with an actual checkpointer behind it.
	// Respawn unless the loop is still alive, the store was stopped for
	// good (Close), or the reset itself failed. The decision and the
	// running/WG bookkeeping happen under mu; the spawn itself must not
	// (the goroutine takes ckptMu/syncMu/mu in its own time).
	respawn := d.ckptThresh > 0 && !d.ckptRunning && !d.ckptStopped && d.err == nil
	if respawn {
		d.ckptRunning = true
		d.ckptWG.Add(1)
	}
	d.mu.Unlock()
	if respawn {
		go d.checkpointLoop()
	}
}

// resetLocked is Reset's body, under d.mu.
func (d *Disk) resetLocked(init core.DB) {
	d.closeSegmentsLocked()
	names, err := d.fs.List(d.dir)
	if err != nil {
		d.poisonLocked(err)
		return
	}
	for _, n := range names {
		if n == lockFileName {
			continue // unlinking our own flock would let a second writer in
		}
		if err := d.fs.Remove(segPath(d.dir, n)); err != nil {
			d.poisonLocked(err)
			return
		}
	}
	d.table = make(map[core.Var]core.Value, len(init))
	for v, val := range init {
		d.table[v] = val
	}
	d.ctx = make(map[int]*diskCtx)
	d.err = nil
	d.seq = 1
	d.activeBytes = 0
	d.dirty = false
	d.ckptGen++ // abandon any in-flight checkpoint of the old incarnation
	d.ckptSeq = 0
	d.sinceCkpt = 0
	d.ckptOff = false
	d.fsyncs.Store(0)
	d.walBytes.Store(0)
	d.syncFailures.Store(0)
	d.checkpoints.Store(0)
	d.ckptFailures.Store(0)
	d.ckptBytes.Store(0)
	d.segsRetired.Store(0)
	d.reads.Store(0)
	d.writes.Store(0)
	d.rollbacks.Store(0)
	// WALTruncated and RecoveryNs survive Reset: they describe the open
	// that produced this store, which a Reset does not re-do.
	f, err := d.fs.Create(segPath(d.dir, segName(d.seq)))
	if err != nil {
		d.poisonLocked(err)
		return
	}
	d.active = f
	if err := d.appendLocked(d.enc.encodeSnapshot(init)); err != nil {
		return
	}
	d.syncLocked()
}

// appendLocked writes one framed record to the active segment, rolling to
// a new segment first when the active one is full. On failure the error is
// sticky: memory was not modified by the caller yet (callers append before
// applying), so the log remains the truth.
func (d *Disk) appendLocked(frame []byte) error {
	if d.err != nil {
		return d.err
	}
	if d.active == nil {
		d.err = fmt.Errorf("storage: disk backend used before Reset/OpenDisk")
		return d.err
	}
	if d.activeBytes >= d.segBytes {
		// Seal the active segment: sync it so only the newest segment can
		// ever hold a torn tail, then start the next one. The sealed file
		// stays open until Close or checkpoint retirement — a concurrent
		// GroupSync may be fsyncing a captured handle to it right now.
		if err := d.syncLocked(); err != nil {
			return err
		}
		d.sealed = append(d.sealed, sealedSeg{seq: d.seq, f: d.active})
		d.seq++
		f, err := d.fs.Create(segPath(d.dir, segName(d.seq)))
		if err != nil {
			d.poisonLocked(err)
			return err
		}
		d.active = f
		d.activeBytes = 0
	}
	n, err := d.active.Write(frame)
	d.walBytes.Add(int64(n))
	d.activeBytes += int64(n)
	if n > 0 {
		d.dirty = true
	}
	if err != nil {
		d.poisonLocked(err)
		return err
	}
	d.sinceCkpt += int64(n)
	if d.ckptThresh > 0 && d.sinceCkpt >= d.ckptThresh && !d.ckptOff {
		select { // wake the checkpointer; a pending kick already covers us
		case d.ckptKick <- struct{}{}:
		default:
		}
	}
	return nil
}

// syncLocked forces the active segment to stable storage if anything was
// appended since the last sync.
func (d *Disk) syncLocked() error {
	if d.err != nil {
		return d.err
	}
	if !d.dirty || d.active == nil {
		return nil
	}
	if err := d.active.Sync(); err != nil {
		d.syncFailures.Add(1)
		d.poisonLocked(err)
		return err
	}
	d.dirty = false
	d.fsyncs.Add(1)
	return nil
}

// ctxOfLocked returns tx's context, creating it on first use.
func (d *Disk) ctxOfLocked(tx int) *diskCtx {
	c := d.ctx[tx]
	if c == nil {
		c = &diskCtx{}
		d.ctx[tx] = c
	}
	return c
}

// getLocked reads v for tx: its own buffered write if any, else the table.
func (d *Disk) getLocked(c *diskCtx, v core.Var) core.Value {
	d.reads.Add(1)
	if d.buffered && c != nil {
		for i := len(c.writes) - 1; i >= 0; i-- {
			if c.writes[i].v == v {
				return c.writes[i].val
			}
		}
	}
	return d.table[v]
}

// putLocked stores scalar as v for tx: buffered mode accumulates in the
// write set; eager mode logs an update record (redo+undo) and applies.
func (d *Disk) putLocked(tx int, c *diskCtx, v core.Var, scalar core.Value) error {
	d.writes.Add(1)
	if d.buffered {
		c.writes = append(c.writes, walWrite{v: v, val: scalar})
		return nil
	}
	old, existed := d.table[v]
	if err := d.appendLocked(d.enc.encodeUpdate(tx, v, old, scalar, existed)); err != nil {
		return err
	}
	d.table[v] = scalar
	c.undo = append(c.undo, diskUndo{v: v, old: old, existed: existed})
	return nil
}

// Get implements Backend.
func (d *Disk) Get(tx int, v core.Var) core.Value {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.getLocked(d.ctx[tx], v)
}

// Put implements Backend. Errors are sticky (Err); ApplyStep is the
// error-propagating path the runtime uses.
func (d *Disk) Put(tx int, v core.Var, scalar core.Value) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.putLocked(tx, d.ctxOfLocked(tx), v, scalar)
}

// Scan implements Backend.
func (d *Disk) Scan(fn func(v core.Var, scalar core.Value) bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for v, val := range d.table {
		if !fn(v, val) {
			return
		}
	}
}

// ApplyStep implements Backend with the paper's step semantics (see
// Backend); a sticky durability error fails every subsequent step, which
// is how a poisoned store surfaces as the run error.
func (d *Disk) ApplyStep(tx int, step core.Step) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	c := d.ctxOfLocked(tx)
	c.locals = append(c.locals, d.getLocked(c, step.Var))
	if step.Kind == core.Read {
		return nil
	}
	if step.Fn == nil {
		return fmt.Errorf("storage: step on %s has no interpretation", step.Var)
	}
	return d.putLocked(tx, c, step.Var, step.Fn(c.locals))
}

// Commit implements Backend. The commit record is the durability point:
// buffered mode logs the write set and applies it only after the append
// succeeded (atomic — a failed append commits nothing); eager mode logs a
// bare commit record sealing the transaction's update records. Under
// FsyncAlways the log is synced before Commit returns; under FsyncGroup
// durability arrives at the next GroupSync.
func (d *Disk) Commit(tx int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.ctx[tx]
	delete(d.ctx, tx)
	if d.err != nil {
		return
	}
	if d.buffered {
		if c == nil || len(c.writes) == 0 {
			return // read-only: nothing to make durable
		}
		if err := d.appendLocked(d.enc.encodeCommit(tx, c.writes)); err != nil {
			return
		}
		for _, w := range c.writes {
			d.table[w.v] = w.val
		}
	} else {
		if c == nil || len(c.undo) == 0 {
			return
		}
		if err := d.appendLocked(d.enc.encodeCommit(tx, nil)); err != nil {
			return
		}
	}
	if d.policy == FsyncAlways {
		d.syncLocked()
	}
}

// Rollback implements Backend: buffered mode just discards the write set
// (nothing reached the log); eager mode restores overwritten values in
// reverse and appends an abort record so recovery undoes the same way.
func (d *Disk) Rollback(tx int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.ctx[tx]
	delete(d.ctx, tx)
	if c == nil {
		return
	}
	d.rollbacks.Add(1)
	if d.buffered || len(c.undo) == 0 {
		return
	}
	for i := len(c.undo) - 1; i >= 0; i-- {
		u := c.undo[i]
		if u.existed {
			d.table[u.v] = u.old
		} else {
			delete(d.table, u.v)
		}
	}
	d.appendLocked(d.enc.encodeAbort(tx))
}

// State implements Backend.
func (d *Disk) State() core.DB {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(core.DB, len(d.table))
	for v, val := range d.table {
		out[v] = val
	}
	return out
}

// GroupSync implements GroupSyncer: under FsyncGroup (and FsyncAlways,
// where it is a clean-log no-op) force the log down; under FsyncNever do
// nothing. The GroupCommitter calls this once per drained group.
//
// The fsync itself runs outside d.mu, so appends — and with them the whole
// execution hot path — proceed while it is in flight; that concurrency is
// what grows commit groups. Correctness: every record of the drained group
// was appended before this call, so each sits either in a sealed segment
// (synced at roll time, under d.mu) or in the active segment captured
// here. A record appended after the capture re-marks the log dirty and is
// covered by the next sync; callers piggybacking on a sync that already
// covered their records see a clean log and skip the fsync entirely.
func (d *Disk) GroupSync() error {
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	d.mu.Lock()
	if d.policy == FsyncNever || d.err != nil || !d.dirty || d.active == nil {
		err := d.err
		d.mu.Unlock()
		return err
	}
	f := d.active
	d.dirty = false
	d.mu.Unlock()
	if err := f.Sync(); err != nil {
		d.syncFailures.Add(1)
		d.mu.Lock()
		d.poisonLocked(err)
		d.mu.Unlock()
		return err
	}
	d.fsyncs.Add(1)
	return nil
}

// SyncCoalesces reports whether GroupSync performs real, amortizable
// fsyncs — true only under FsyncGroup (under FsyncAlways every commit
// already synced inline; under FsyncNever there is nothing to sync). The
// GroupCommitter uses it to decide whether giving runnable peers a chance
// to join a group before sealing it can pay for itself. The policy is
// immutable after construction, so no lock is needed.
func (d *Disk) SyncCoalesces() bool { return d.policy == FsyncGroup }

// Err returns the sticky durability error, if any.
func (d *Disk) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// closeSegmentsLocked closes the active segment and every sealed one.
func (d *Disk) closeSegmentsLocked() {
	if d.active != nil {
		d.active.Close()
		d.active = nil
	}
	for _, s := range d.sealed {
		s.f.Close()
	}
	d.sealed = nil
}

// Close syncs and closes every open segment and releases the data-dir
// lock. The store must be quiescent. The background checkpointer is
// stopped (and any in-flight checkpoint drained) before the segments go
// away, so Close never races a checkpoint.
func (d *Disk) Close() error {
	d.stopCheckpointer()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lock != nil {
		d.lock.Close()
		d.lock = nil
	}
	if d.active == nil {
		return d.err
	}
	err := d.syncLocked()
	d.closeSegmentsLocked()
	return err
}

// Destroy removes the backing directory. Test convenience.
func (d *Disk) Destroy() error {
	d.Close()
	return os.RemoveAll(d.dir)
}

// DurabilityStats implements DurableBackend.
func (d *Disk) DurabilityStats() DurabilityStats {
	d.mu.Lock()
	off := d.ckptOff
	d.mu.Unlock()
	return DurabilityStats{
		Fsyncs:             d.fsyncs.Load(),
		WALBytes:           d.walBytes.Load(),
		WALTruncated:       d.walTruncated.Load(),
		SyncFailures:       d.syncFailures.Load(),
		RecoveryNs:         d.recoveryNs.Load(),
		RecoveryBytes:      d.recoveryBytes.Load(),
		Checkpoints:        d.checkpoints.Load(),
		CheckpointFailures: d.ckptFailures.Load(),
		CheckpointBytes:    d.ckptBytes.Load(),
		SegmentsRetired:    d.segsRetired.Load(),
		CheckpointerOff:    off,
	}
}

// Stats reports the backend's physical work in the shared Stats shape
// (payload counters stay zero: the disk backend models scalars only).
func (d *Disk) Stats() Stats {
	return Stats{
		Reads:     d.reads.Load(),
		Writes:    d.writes.Load(),
		Rollbacks: d.rollbacks.Load(),
	}
}
