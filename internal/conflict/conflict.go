// Package conflict implements the syntactic conflict relation between
// transaction steps, serialization (conflict) graphs, and the
// conflict-serializability (CSR) test.
//
// Two steps conflict when they access the same variable, belong to
// different transactions, and at least one of them writes (kind Update or
// Write; Read steps are pure readers). A schedule is conflict-serializable
// iff its serialization graph is acyclic; CSR is a sufficient, efficiently
// checkable condition for the paper's SR (Herbrand serializability), and it
// is the fixpoint set realized by the SGT online scheduler in
// internal/online.
package conflict

import (
	"fmt"

	"optcc/internal/core"
)

// Writes reports whether a step of the given kind writes its variable.
//
//optcc:hotpath
func Writes(k core.StepKind) bool { return k == core.Update || k == core.Write }

// Reads reports whether a step of the given kind reads its variable (in
// the sense of using the value: Write steps ignore what they read).
//
//optcc:hotpath
func Reads(k core.StepKind) bool { return k == core.Update || k == core.Read }

// Conflicts reports whether two steps of different transactions conflict:
// same variable and not both pure readers. Steps of the same transaction
// are ordered by the program, not by the conflict relation, and never
// "conflict" here.
func Conflicts(a, b core.Step) bool {
	if a.Var != b.Var {
		return false
	}
	return Writes(a.Kind) || Writes(b.Kind)
}

// StepsConflict looks both steps up in the system and applies Conflicts,
// additionally requiring distinct transactions.
func StepsConflict(sys *core.System, a, b core.StepID) bool {
	if a.Tx == b.Tx {
		return false
	}
	return Conflicts(sys.Step(a), sys.Step(b))
}

// Graph is a serialization graph: node i is transaction i; an edge i→j
// records that some step of Ti precedes and conflicts with a step of Tj.
type Graph struct {
	n   int
	adj [][]bool
}

// NewGraph returns an empty graph on n transactions.
func NewGraph(n int) *Graph {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &Graph{n: n, adj: adj}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the edge i→j (self-loops are ignored).
func (g *Graph) AddEdge(i, j int) {
	if i != j {
		g.adj[i][j] = true
	}
}

// HasEdge reports whether i→j is present.
func (g *Graph) HasEdge(i, j int) bool { return g.adj[i][j] }

// Edges returns the edge list in (from, to) lexicographic order.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if g.adj[i][j] {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// HasCycle reports whether the graph contains a directed cycle.
func (g *Graph) HasCycle() bool {
	_, ok := g.TopoOrder()
	return !ok
}

// TopoOrder returns a topological order of the nodes and true, or nil and
// false if the graph is cyclic. Ties are broken by smallest index, so the
// order is deterministic.
func (g *Graph) TopoOrder() ([]int, bool) {
	indeg := make([]int, g.n)
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if g.adj[i][j] {
				indeg[j]++
			}
		}
	}
	var order []int
	used := make([]bool, g.n)
	for len(order) < g.n {
		found := -1
		for i := 0; i < g.n; i++ {
			if !used[i] && indeg[i] == 0 {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		used[found] = true
		order = append(order, found)
		for j := 0; j < g.n; j++ {
			if g.adj[found][j] {
				indeg[j]--
			}
		}
	}
	return order, true
}

// Build constructs the serialization graph of a legal schedule (or legal
// prefix) of the system.
func Build(sys *core.System, h core.Schedule) (*Graph, error) {
	if !h.LegalPrefix(sys.Format()) {
		return nil, fmt.Errorf("conflict: %v is not a legal prefix of format %v", h, sys.Format())
	}
	g := NewGraph(sys.NumTxs())
	for a := 0; a < len(h); a++ {
		sa := sys.Step(h[a])
		for b := a + 1; b < len(h); b++ {
			if h[a].Tx == h[b].Tx {
				continue
			}
			if Conflicts(sa, sys.Step(h[b])) {
				g.AddEdge(h[a].Tx, h[b].Tx)
			}
		}
	}
	return g, nil
}

// Serializable reports whether the schedule is conflict-serializable and,
// if so, returns a witnessing serial transaction order (a topological order
// of the serialization graph).
func Serializable(sys *core.System, h core.Schedule) (bool, []int, error) {
	g, err := Build(sys, h)
	if err != nil {
		return false, nil, err
	}
	order, ok := g.TopoOrder()
	if !ok {
		return false, nil, nil
	}
	return true, order, nil
}

// Equivalent reports conflict equivalence: the two schedules order every
// pair of conflicting steps identically. Conflict-equivalent schedules have
// identical Herbrand execution results.
func Equivalent(sys *core.System, h1, h2 core.Schedule) (bool, error) {
	format := sys.Format()
	if !h1.Legal(format) || !h2.Legal(format) {
		return false, fmt.Errorf("conflict: schedules must be legal and complete")
	}
	pos := map[core.StepID]int{}
	for i, id := range h2 {
		pos[id] = i
	}
	for a := 0; a < len(h1); a++ {
		for b := a + 1; b < len(h1); b++ {
			if h1[a].Tx == h1[b].Tx {
				continue
			}
			if Conflicts(sys.Step(h1[a]), sys.Step(h1[b])) && pos[h1[a]] > pos[h1[b]] {
				return false, nil
			}
		}
	}
	return true, nil
}

// PrefixClosed reports whether every prefix of h is conflict-serializable.
// Because the serialization graph of a prefix is a subgraph of the full
// graph, this is equivalent to h itself being CSR; the function exists to
// document and test that monotonicity (it is what makes the SGT fixpoint
// exactly the CSR set).
func PrefixClosed(sys *core.System, h core.Schedule) (bool, error) {
	for k := 0; k <= len(h); k++ {
		g, err := Build(sys, h[:k])
		if err != nil {
			return false, err
		}
		if g.HasCycle() {
			return false, nil
		}
	}
	return true, nil
}
