package conflict

import (
	"math/rand"
	"testing"

	"optcc/internal/core"
	"optcc/internal/herbrand"
	"optcc/internal/schedule"
)

func rw(v core.Var) []core.Step {
	return []core.Step{{Var: v, Kind: core.Read}, {Var: v, Kind: core.Write}}
}

func lostUpdate() *core.System {
	return (&core.System{
		Name: "lostupdate",
		Txs: []core.Transaction{
			{Steps: rw("x")},
			{Steps: rw("x")},
		},
	}).Normalize()
}

func TestConflictsMatrix(t *testing.T) {
	r := core.Step{Var: "x", Kind: core.Read}
	w := core.Step{Var: "x", Kind: core.Write}
	u := core.Step{Var: "x", Kind: core.Update}
	ry := core.Step{Var: "y", Kind: core.Read}
	cases := []struct {
		a, b core.Step
		want bool
	}{
		{r, r, false},
		{r, w, true},
		{w, r, true},
		{w, w, true},
		{u, r, true},
		{u, u, true},
		{r, ry, false},
		{w, ry, false},
	}
	for _, c := range cases {
		if got := Conflicts(c.a, c.b); got != c.want {
			t.Errorf("Conflicts(%v:%v, %v:%v) = %v, want %v", c.a.Kind, c.a.Var, c.b.Kind, c.b.Var, got, c.want)
		}
	}
}

func TestStepsConflictSameTx(t *testing.T) {
	sys := lostUpdate()
	if StepsConflict(sys, core.StepID{Tx: 0, Idx: 0}, core.StepID{Tx: 0, Idx: 1}) {
		t.Error("steps of one transaction reported as conflicting")
	}
	if !StepsConflict(sys, core.StepID{Tx: 0, Idx: 0}, core.StepID{Tx: 1, Idx: 1}) {
		t.Error("r1(x) vs w2(x) should conflict")
	}
}

func TestLostUpdateCycle(t *testing.T) {
	sys := lostUpdate()
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}, {Tx: 1, Idx: 1}}
	g, err := Build(sys, h)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Errorf("edges = %v, want both directions", g.Edges())
	}
	if !g.HasCycle() {
		t.Error("lost-update graph acyclic")
	}
	ok, _, err := Serializable(sys, h)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("lost update judged CSR")
	}
}

func TestSerialSchedulesAreCSRWithMatchingWitness(t *testing.T) {
	sys := lostUpdate()
	for _, h := range schedule.Serials(sys.Format()) {
		ok, order, err := Serializable(sys, h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("serial schedule %v not CSR", h)
		}
		want, _ := h.SerialOrder()
		for i := range want {
			if order[i] != want[i] {
				t.Errorf("witness %v for serial %v", order, h)
				break
			}
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(2, 0)
	order, ok := g.TopoOrder()
	if !ok {
		t.Fatal("acyclic graph reported cyclic")
	}
	if order[0] != 1 && order[0] != 2 {
		// smallest-index tie-break: nodes 1 and 2 have indegree 0; node 1
		// is chosen first.
	}
	if order[0] != 1 {
		t.Errorf("topo order = %v, want node 1 first (smallest index with indegree 0)", order)
	}
	g.AddEdge(0, 2)
	if _, ok := g.TopoOrder(); ok {
		t.Error("cycle not detected")
	}
	if !g.HasCycle() {
		t.Error("HasCycle false on cyclic graph")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(1, 1)
	if g.HasEdge(1, 1) {
		t.Error("self-loop stored")
	}
	if g.HasCycle() {
		t.Error("self-loop created cycle")
	}
	if g.N() != 2 {
		t.Error("N wrong")
	}
}

func TestBuildRejectsIllegal(t *testing.T) {
	sys := lostUpdate()
	if _, err := Build(sys, core.Schedule{{Tx: 0, Idx: 1}}); err != nil {
	} else {
		t.Error("illegal prefix accepted")
	}
	if _, _, err := Serializable(sys, core.Schedule{{Tx: 5, Idx: 0}}); err == nil {
		t.Error("out-of-range schedule accepted")
	}
}

func TestEquivalentSchedules(t *testing.T) {
	// Reads of the same variable commute.
	sys := (&core.System{
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Read}}},
			{Steps: []core.Step{{Var: "x", Kind: core.Read}}},
		},
	}).Normalize()
	h1 := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}}
	h2 := core.Schedule{{Tx: 1, Idx: 0}, {Tx: 0, Idx: 0}}
	eq, err := Equivalent(sys, h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("read-read swap judged inequivalent")
	}

	wsys := (&core.System{
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Write}}},
			{Steps: []core.Step{{Var: "x", Kind: core.Write}}},
		},
	}).Normalize()
	eq, err = Equivalent(wsys, h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("write-write swap judged equivalent")
	}
	if _, err := Equivalent(wsys, h1[:1], h2); err == nil {
		t.Error("incomplete schedule accepted")
	}
}

// CSR ⇒ SR: on random small systems, every conflict-serializable schedule
// is Herbrand-serializable, and conflict equivalence implies identical
// Herbrand finals.
func TestCSRImpliesHerbrandSR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vars := []core.Var{"x", "y"}
	kinds := []core.StepKind{core.Read, core.Write, core.Update}
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(2)
		txs := make([]core.Transaction, n)
		for i := range txs {
			m := 1 + rng.Intn(2)
			steps := make([]core.Step, m)
			for j := range steps {
				steps[j] = core.Step{
					Var:  vars[rng.Intn(len(vars))],
					Kind: kinds[rng.Intn(len(kinds))],
				}
			}
			txs[i] = core.Transaction{Steps: steps}
		}
		sys := (&core.System{Name: "rand", Txs: txs}).Normalize()
		checker, err := herbrand.NewChecker(sys)
		if err != nil {
			t.Fatal(err)
		}
		schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
			csr, _, err := Serializable(sys, h)
			if err != nil {
				t.Fatal(err)
			}
			if csr {
				sr, _, err := checker.Serializable(h)
				if err != nil {
					t.Fatal(err)
				}
				if !sr {
					t.Fatalf("system %v: %v is CSR but not SR", sys.Format(), h)
				}
			}
			return true
		})
	}
}

func TestPrefixClosedEqualsCSR(t *testing.T) {
	sys := lostUpdate()
	schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
		hc := h.Clone()
		csr, _, err := Serializable(sys, hc)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := PrefixClosed(sys, hc)
		if err != nil {
			t.Fatal(err)
		}
		if csr != pc {
			t.Errorf("%v: CSR=%v but PrefixClosed=%v", hc, csr, pc)
		}
		return true
	})
}
